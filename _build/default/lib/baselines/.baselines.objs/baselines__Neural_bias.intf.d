lib/baselines/neural_bias.mli: Sigkit Technique
