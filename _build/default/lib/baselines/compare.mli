(** Quantified comparison of locking techniques (paper Section II).

    The paper compares prior work qualitatively; this module grounds
    the comparison in the behavioural models: key widths, removal
    vulnerability, design intrusiveness, overheads, and a functional
    corruption probe for each scheme under random wrong keys. *)

val proposed : Technique.t
(** The paper's programmability-fabric locking: 64 per-die key bits,
    zero added circuitry, zero analog overhead (key-management
    overhead shared at SoC level). *)

val all : Technique.t list
(** All seven techniques, prior work first, proposed last. *)

type corruption_probe = {
  technique : string;
  wrong_key_penalty_db : float;
  (** mean SNR-equivalent penalty under 32 random wrong keys *)
  zero_key_penalty_db : float;
  (** penalty when the correct key is applied (sanity: ~0) *)
}

val corruption_probes : ?seed:int -> unit -> corruption_probe list
(** Exercise each behavioural model (the proposed scheme's penalty is
    taken from the published margin between correct and best invalid
    key rather than re-simulated here). *)

val removal_analysis : unit -> (string * Technique.removal_verdict) list

val pp_table : Format.formatter -> unit -> unit
