type t = {
  legs : float array;       (** per-leg contribution to the mirror ratio *)
  correct : bool array;
  target : float;
}

let create rng ~key_bits ~ratio =
  if key_bits < 2 || key_bits > 20 then invalid_arg "Mirror_lock.create: key bits";
  if ratio <= 0.0 then invalid_arg "Mirror_lock.create: ratio";
  let correct = Array.init key_bits (fun _ -> Sigkit.Rng.bool rng) in
  if not (Array.exists Fun.id correct) then correct.(0) <- true;
  let n_on = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 correct in
  (* Correct legs share the target ratio; decoy legs are deliberately
     off-unit so wrong subsets miss it. *)
  let legs =
    Array.init key_bits (fun i ->
        if correct.(i) then ratio /. float_of_int n_on
        else ratio /. float_of_int n_on *. Sigkit.Rng.uniform rng 0.3 2.5)
  in
  { legs; correct; target = ratio }

let correct_key t = Array.copy t.correct

let ratio_of t key =
  let acc = ref 0.0 in
  Array.iteri (fun i leg -> if key.(i) then acc := !acc +. leg) t.legs;
  !acc

let ratio_error t ~key =
  if Array.length key <> Array.length t.correct then invalid_arg "Mirror_lock: key arity";
  Float.abs (ratio_of t key -. t.target) /. t.target

let bias_current_ua t ~key ~nominal_ua = nominal_ua *. ratio_of t key /. t.target

let descriptor =
  {
    Technique.name = "current-mirror locking";
    reference = "[8]";
    key_bits = 12;
    lock_site = Technique.Biasing;
    per_chip_key = false;
    design_intrusive = true;
    added_circuitry = true;
    area_overhead_pct = 3.0;
    power_overhead_pct = 1.5;
    removal =
      Technique.Removable
        "mirror legs are added circuitry on a handful of bias lines: redesign the mirrors and re-fab";
  }
