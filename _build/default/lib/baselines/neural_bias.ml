type t = {
  w1 : float array array;   (** hidden x input *)
  b1 : float array;
  w2 : float array array;   (** output x hidden *)
  b2 : float array;
  secret : float array;
  target : float array;
}

let forward ~w1 ~b1 ~w2 ~b2 x =
  let hidden =
    Array.mapi
      (fun j row ->
        let acc = ref b1.(j) in
        Array.iteri (fun i w -> acc := !acc +. (w *. x.(i))) row;
        tanh !acc)
      w1
  in
  let out =
    Array.mapi
      (fun k row ->
        let acc = ref b2.(k) in
        Array.iteri (fun j w -> acc := !acc +. (w *. hidden.(j))) row;
        !acc)
      w2
  in
  (hidden, out)

let train ?(hidden = 8) ?(epochs = 3000) ?(decoys = 24) rng ~key_voltages ~target_biases =
  let n_in = Array.length key_voltages and n_out = Array.length target_biases in
  if n_in = 0 || n_out = 0 then invalid_arg "Neural_bias.train: empty vectors";
  let w1 = Array.init hidden (fun _ -> Array.init n_in (fun _ -> Sigkit.Rng.uniform rng (-0.5) 0.5)) in
  let b1 = Array.make hidden 0.0 in
  let w2 = Array.init n_out (fun _ -> Array.init hidden (fun _ -> Sigkit.Rng.uniform rng (-0.5) 0.5)) in
  let b2 = Array.make n_out 0.0 in
  (* Training set: the secret key maps to the target; decoy vectors map
     to pseudo-random garbage so neighbourhoods do not leak the key. *)
  let decoy_samples =
    List.init decoys (fun _ ->
        let x = Array.init n_in (fun _ -> Sigkit.Rng.float rng) in
        let y = Array.init n_out (fun _ -> Sigkit.Rng.float rng) in
        (x, y))
  in
  let samples = (key_voltages, target_biases) :: decoy_samples in
  let rate = 0.08 in
  for _ = 1 to epochs do
    let step (x, y) =
      let hidden_act, out = forward ~w1 ~b1 ~w2 ~b2 x in
      let d_out = Array.mapi (fun k o -> o -. y.(k)) out in
      (* Output layer gradients. *)
      Array.iteri
        (fun k row ->
          Array.iteri (fun j _ -> row.(j) <- row.(j) -. (rate *. d_out.(k) *. hidden_act.(j))) row;
          b2.(k) <- b2.(k) -. (rate *. d_out.(k)))
        w2;
      (* Hidden layer gradients through tanh'. *)
      for j = 0 to hidden - 1 do
        let upstream = ref 0.0 in
        for k = 0 to n_out - 1 do
          upstream := !upstream +. (d_out.(k) *. w2.(k).(j))
        done;
        let grad = !upstream *. (1.0 -. (hidden_act.(j) *. hidden_act.(j))) in
        Array.iteri (fun i xi -> w1.(j).(i) <- w1.(j).(i) -. (rate *. grad *. xi)) x;
        b1.(j) <- b1.(j) -. (rate *. grad)
      done
    in
    List.iter step samples
  done;
  { w1; b1; w2; b2; secret = Array.copy key_voltages; target = Array.copy target_biases }

let infer t x =
  let _, out = forward ~w1:t.w1 ~b1:t.b1 ~w2:t.w2 ~b2:t.b2 x in
  out

let bias_error t x =
  let out = infer t x in
  let acc = ref 0.0 in
  Array.iteri
    (fun k o ->
      let d = o -. t.target.(k) in
      acc := !acc +. (d *. d))
    out;
  sqrt (!acc /. float_of_int (Array.length out))

let secret_key t = Array.copy t.secret

let descriptor =
  {
    Technique.name = "neural-network biasing";
    reference = "[11]";
    key_bits = 32;  (* analog key: 4 voltages at ~8-bit DAC precision *)
    lock_site = Technique.Neural_biasing;
    per_chip_key = false;
    design_intrusive = true;
    added_circuitry = true;
    area_overhead_pct = 9.0;
    power_overhead_pct = 4.0;
    removal =
      Technique.Removable
        "the MLP only reproduces a handful of bias voltages: measure them on an oracle and hardwire";
  }
