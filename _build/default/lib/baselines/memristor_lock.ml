type t = {
  conductance_us : float array;   (** per-row on-state conductance *)
  correct : bool array;
  target_mv : float;
}

let target_bias_mv = 300.0

let create rng ~rows =
  if rows < 2 || rows > 24 then invalid_arg "Memristor_lock.create: rows";
  let correct = Array.init rows (fun _ -> Sigkit.Rng.bool rng) in
  if not (Array.exists Fun.id correct) then correct.(0) <- true;
  let n_on = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 correct in
  let conductance_us =
    Array.init rows (fun i ->
        if correct.(i) then target_bias_mv /. float_of_int n_on
        else target_bias_mv /. float_of_int n_on *. Sigkit.Rng.uniform rng 0.2 2.0)
  in
  { conductance_us; correct; target_mv = target_bias_mv }

let correct_key t = Array.copy t.correct

let body_bias_mv t ~key =
  if Array.length key <> Array.length t.correct then invalid_arg "Memristor_lock: key arity";
  let acc = ref 0.0 in
  Array.iteri (fun i g -> if key.(i) then acc := !acc +. g) t.conductance_us;
  !acc

let offset_penalty_mv t ~key =
  (* 1 mV of input offset per 4 mV of body-bias error, first order. *)
  Float.abs (body_bias_mv t ~key -. t.target_mv) /. 4.0

let descriptor =
  {
    Technique.name = "memristor crossbar bias lock";
    reference = "[6]";
    key_bits = 16;
    lock_site = Technique.Biasing;
    per_chip_key = false;
    design_intrusive = true;
    added_circuitry = true;
    area_overhead_pct = 6.0;
    power_overhead_pct = 2.0;
    removal =
      Technique.Removable
        "the crossbar only generates a DC body bias: replace it with a fixed bias divider";
  }
