(** Combinational current-mirror locking, Wang et al. [8] (paper Fig. 1c).

    The bias-distribution current mirrors are redesigned so key bits
    switch mirror legs in and out; only the correct combination
    reproduces the designed mirror ratio.  Same structural weakness as
    [7]: the lock sits in the (global, per-design) biasing and can be
    excised. *)

type t

val create : Sigkit.Rng.t -> key_bits:int -> ratio:float -> t
(** Mirror with hidden correct leg set reproducing [ratio]. *)

val correct_key : t -> bool array

val ratio_error : t -> key:bool array -> float
(** |ratio(key) - ratio_target| / ratio_target. *)

val bias_current_ua : t -> key:bool array -> nominal_ua:float -> float
(** The mis-keyed bias current a downstream block would receive. *)

val descriptor : Technique.t
