(** Parameter-biasing obfuscation, Rao & Savidis [7] (paper Fig. 1b).

    Transistors in the bias generator are replaced by key-gated
    parallel devices; the key must select a subset whose aggregate
    width equals the original device's width.  The bias current — and
    with it every performance hanging off the bias — scales with the
    realised width.  The model exposes the width error and a first-
    order performance-degradation figure for any key. *)

type t

val create : Sigkit.Rng.t -> key_bits:int -> t
(** Random binary-ish width split with a hidden correct subset. *)

val correct_key : t -> bool array

val width_error : t -> key:bool array -> float
(** |W(key) - W_target| / W_target. *)

val performance_penalty_db : t -> key:bool array -> float
(** First-order SNR-equivalent penalty: bias error converts to gain and
    headroom loss, ~40 dB per 100% width error, saturating. *)

val keys_within_tolerance : t -> tolerance:float -> int
(** How many of the 2^k keys land within a width tolerance — the
    scheme's effective key multiplicity (small key spaces make this
    enumerable, one of its weaknesses). *)

val removal : t -> Technique.removal_verdict
(** Replace the obfuscated bias block with a fresh correctly-sized
    transistor: the biases are few and visible in the netlist. *)

val descriptor : Technique.t
