type lock_site =
  | Biasing
  | Neural_biasing
  | Digital_section
  | Calibration_loop
  | Programmable_fabric

type removal_verdict =
  | Removable of string
  | Hard_to_remove of string
  | Nothing_to_remove

type t = {
  name : string;
  reference : string;
  key_bits : int;
  lock_site : lock_site;
  per_chip_key : bool;
  design_intrusive : bool;
  added_circuitry : bool;
  area_overhead_pct : float;
  power_overhead_pct : float;
  removal : removal_verdict;
}

let removal_vulnerable t =
  match t.removal with
  | Removable _ -> true
  | Hard_to_remove _ | Nothing_to_remove -> false

let site_label = function
  | Biasing -> "biasing"
  | Neural_biasing -> "NN biasing"
  | Digital_section -> "digital section"
  | Calibration_loop -> "calibration loop"
  | Programmable_fabric -> "programmable fabric"

let pp_row fmt t =
  Format.fprintf fmt "%-28s %-10s %3d bits  %-19s  %-8s %-9s %-9s  %4.1f%% / %4.1f%%"
    t.name t.reference t.key_bits (site_label t.lock_site)
    (if t.per_chip_key then "per-die" else "global")
    (if t.design_intrusive then "redesign" else "intact")
    (match t.removal with
    | Removable _ -> "REMOVABLE"
    | Hard_to_remove _ -> "hard"
    | Nothing_to_remove -> "immune")
    t.area_overhead_pct t.power_overhead_pct
