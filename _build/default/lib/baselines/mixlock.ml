type t = { locked : Netlist.Logic_lock.locked }

let create ?(key_bits = 24) ?(adder_width = 16) rng =
  let original = Netlist.Bench_circuits.ripple_adder adder_width in
  { locked = Netlist.Logic_lock.lock rng original ~key_bits }

let correct_key t = Array.copy t.locked.Netlist.Logic_lock.correct_key

let output_error_rate t ~key = Netlist.Logic_lock.corruption t.locked ~key

let equivalent_snr_penalty_db t ~key =
  let e = output_error_rate t ~key in
  if e <= 0.0 then 0.0
  else
    (* Word errors at rate e at full scale: error power ~ e * FS^2/4;
       ceiling = 10log10(signal/error). *)
    Float.max 0.0 (45.0 -. (10.0 *. log10 (1.0 /. e)))

let removal_demo t = Netlist.Logic_lock.removal_attack t.locked

let descriptor =
  {
    Technique.name = "MixLock (digital logic lock)";
    reference = "[9]";
    key_bits = 24;
    lock_site = Technique.Digital_section;
    per_chip_key = false;
    design_intrusive = true;
    added_circuitry = true;
    area_overhead_pct = 2.0;
    power_overhead_pct = 1.0;
    removal =
      Technique.Hard_to_remove
        "key gates interleave with functional logic: excision requires resynthesising the digital section";
  }
