let tone_spacing_hz = 10e6

let tones_for ~f0 ~fs ~n =
  let half = tone_spacing_hz /. 2.0 in
  ( Sigkit.Waveform.coherent_frequency ~freq:(f0 -. half) ~fs ~n,
    Sigkit.Waveform.coherent_frequency ~freq:(f0 +. half) ~fs ~n )

let of_bandpass ?(n_fft = Snr.default_fft_points) ~fs ~f1 ~f2 ~osr record =
  let n = min n_fft (Array.length record) in
  let n = if Sigkit.Fft.is_pow2 n then n else Sigkit.Fft.next_pow2 n / 2 in
  let tail = Array.sub record (Array.length record - n) n in
  let spec = Sigkit.Spectrum.periodogram ~window:Sigkit.Window.Hann ~fs tail in
  let centre = fs /. 4.0 in
  let half_band = fs /. (2.0 *. float_of_int osr) /. 2.0 in
  let p1 = Sigkit.Spectrum.tone_power spec ~freq:f1 in
  let p2 = Sigkit.Spectrum.tone_power spec ~freq:f2 in
  let fundamental = Float.max p1 p2 in
  let bins1 = Sigkit.Spectrum.tone_bins spec ~freq:f1 in
  let bins2 = Sigkit.Spectrum.tone_bins spec ~freq:f2 in
  (* Strongest remaining bin in band = the worst spur. *)
  let lo = Sigkit.Spectrum.bin_of_freq spec (centre -. half_band) in
  let hi = Sigkit.Spectrum.bin_of_freq spec (centre +. half_band) in
  let excluded k = List.exists (fun (a, b) -> k >= a && k <= b) [ bins1; bins2 ] in
  let power = spec.Sigkit.Spectrum.power in
  let spur_bin = ref lo in
  for k = lo to hi do
    if (not (excluded k)) && power.(k) > power.(!spur_bin) then spur_bin := k
  done;
  (* Integrate the spur's window lobe (excluding any fundamental bins)
     so spur and fundamental powers are measured identically. *)
  let lobe = Sigkit.Window.main_lobe_bins spec.Sigkit.Spectrum.window in
  let spur = ref 0.0 in
  for k = max lo (!spur_bin - lobe) to min hi (!spur_bin + lobe) do
    if not (excluded k) then spur := !spur +. power.(k)
  done;
  if !spur <= 0.0 then infinity
  else Sigkit.Decibel.db_of_power_ratio (fundamental /. !spur)
