(** Performance specifications and pass/fail checking.

    Locking "succeeds when at least one performance violates its
    specification" (paper Section VI-A); this module is that predicate. *)

type measurement = {
  snr_mod_db : float;      (** SNR at the modulator output *)
  snr_rx_db : float;       (** SNR at the receiver output *)
  sfdr_db : float option;  (** two-tone SFDR when measured *)
}

type verdict = {
  snr_ok : bool;
  sfdr_ok : bool;
  functional : bool;  (** all measured performances inside spec *)
}

val check : Rfchain.Standards.t -> measurement -> verdict

val spec_distance : Rfchain.Standards.t -> measurement -> float
(** Non-negative aggregate shortfall (dB) from the specification — the
    optimisation attacks' objective; 0 means fully in spec. *)
