(** Spurious-free dynamic range (paper Fig. 12).

    Measured with a two-tone stimulus: two equal-power tones 10 MHz
    apart.  SFDR is the difference in dB between the fundamental power
    and the strongest in-band spur (the third-order intermodulation
    products [2f1 - f2] and [2f2 - f1] dominate for a weakly nonlinear
    front end). *)

val tone_spacing_hz : float
(** 10 MHz, as in the paper. *)

val tones_for : f0:float -> fs:float -> n:int -> float * float
(** The two coherent test frequencies straddling the carrier. *)

val of_bandpass :
  ?n_fft:int ->
  fs:float ->
  f1:float ->
  f2:float ->
  osr:int ->
  float array ->
  float
(** [of_bandpass ~fs ~f1 ~f2 ~osr record] is the SFDR in dB measured at
    the modulator output: fundamentals at [f1]/[f2], spurs searched in
    the (OSR) band of interest around [fs/4] excluding the fundamental
    lobes. *)
