(** Signal-to-noise ratio metrology (paper Section VI-A).

    SNR is computed from an 8192-point windowed FFT: signal power is
    the carrier's main-lobe bins; noise (plus distortion) is everything
    else inside the band of interest, which for the band-pass modulator
    is [fs / (2 OSR)] wide and centred on [fs / 4]. *)

val default_fft_points : int
(** 8192, as in the paper. *)

val of_bandpass :
  ?n_fft:int ->
  fs:float ->
  f_signal:float ->
  osr:int ->
  float array ->
  float
(** [of_bandpass ~fs ~f_signal ~osr record] is the SNR in dB of the
    modulator-output record: band centred at [fs/4], width
    [fs/(2 osr)], carrier at [f_signal]. *)

val of_baseband :
  ?n_fft:int ->
  fs:float ->
  f_signal:float ->
  f_band:float ->
  float array ->
  float
(** SNR of a real decimated baseband channel: carrier at [f_signal]
    (offset from the original carrier), noise integrated over
    [0, f_band].  Image noise from the other side of the carrier folds
    in; prefer {!of_baseband_iq} when both quadratures are available. *)

val of_baseband_iq :
  ?n_fft:int ->
  fs:float ->
  f_signal:float ->
  f_band:float ->
  float array * float array ->
  float
(** SNR of the complex (i, q) baseband: carrier at the signed offset
    [f_signal], noise integrated over [-f_band, f_band] without image
    folding — the receiver-output metric of Fig. 9. *)

val power_in_band_dbfs : ?n_fft:int -> fs:float -> f_lo:float -> f_hi:float -> float array -> float
(** Band power in dB relative to a full-scale (+-1) square wave —
    a helper for noise-floor diagnostics. *)
