lib/metrics/snr.ml: Array Float Sigkit
