lib/metrics/sfdr.mli:
