lib/metrics/measure.mli: Rfchain Spec
