lib/metrics/spec.ml: Float Rfchain
