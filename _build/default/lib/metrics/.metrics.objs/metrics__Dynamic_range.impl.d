lib/metrics/dynamic_range.ml: Float List
