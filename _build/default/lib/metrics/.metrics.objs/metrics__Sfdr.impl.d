lib/metrics/sfdr.ml: Array Float List Sigkit Snr
