lib/metrics/measure.ml: Float Rfchain Sfdr Sigkit Snr Spec
