lib/metrics/snr.mli:
