lib/metrics/spec.mli: Rfchain
