lib/metrics/dynamic_range.mli:
