type measurement = {
  snr_mod_db : float;
  snr_rx_db : float;
  sfdr_db : float option;
}

type verdict = {
  snr_ok : bool;
  sfdr_ok : bool;
  functional : bool;
}

let check (standard : Rfchain.Standards.t) m =
  let snr_ok = m.snr_mod_db >= standard.min_snr_db && m.snr_rx_db >= standard.min_snr_db in
  let sfdr_ok =
    match m.sfdr_db with
    | None -> true
    | Some sfdr -> sfdr >= standard.min_sfdr_db
  in
  { snr_ok; sfdr_ok; functional = snr_ok && sfdr_ok }

let shortfall target value = Float.max 0.0 (target -. value)

let spec_distance (standard : Rfchain.Standards.t) m =
  shortfall standard.min_snr_db m.snr_mod_db
  +. shortfall standard.min_snr_db m.snr_rx_db
  +. (match m.sfdr_db with
     | None -> 0.0
     | Some sfdr -> shortfall standard.min_sfdr_db sfdr)
