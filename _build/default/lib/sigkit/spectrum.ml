type t = {
  power : float array;
  fs : float;
  n : int;
  window : Window.kind;
}

let periodogram ?(window = Window.Hann) ~fs x =
  let n =
    let len = Array.length x in
    if Fft.is_pow2 len then len else Fft.next_pow2 len / 2
  in
  if n < 2 then invalid_arg "Spectrum.periodogram: record too short";
  let record = Array.sub x 0 n in
  let windowed = Window.apply window record in
  let re, im = Fft.of_real windowed in
  Fft.forward re im;
  let mag2 = Fft.magnitude_squared re im in
  (* One-sided: double interior bins to account for negative frequencies. *)
  let half = (n / 2) + 1 in
  let power =
    Array.init half (fun k ->
        let p = mag2.(k) in
        if k = 0 || k = n / 2 then p else 2.0 *. p)
  in
  { power; fs; n; window }

let bin_of_freq t f =
  let k = int_of_float (Float.round (f *. float_of_int t.n /. t.fs)) in
  max 0 (min (Array.length t.power - 1) k)

let freq_of_bin t k = float_of_int k *. t.fs /. float_of_int t.n

let clamp t k = max 0 (min (Array.length t.power - 1) k)

let band_power t ~f_lo ~f_hi =
  let lo = bin_of_freq t f_lo and hi = bin_of_freq t f_hi in
  let acc = ref 0.0 in
  for k = lo to hi do
    acc := !acc +. t.power.(k)
  done;
  !acc

let band_power_excluding t ~f_lo ~f_hi ~exclude =
  let lo = bin_of_freq t f_lo and hi = bin_of_freq t f_hi in
  let excluded k = List.exists (fun (a, b) -> k >= a && k <= b) exclude in
  let acc = ref 0.0 in
  for k = lo to hi do
    if not (excluded k) then acc := !acc +. t.power.(k)
  done;
  !acc

let peak_in_band t ~f_lo ~f_hi =
  let lo = bin_of_freq t f_lo and hi = bin_of_freq t f_hi in
  let best = ref lo in
  for k = lo to hi do
    if t.power.(k) > t.power.(!best) then best := k
  done;
  (!best, t.power.(!best))

let tone_bins t ~freq =
  let centre = bin_of_freq t freq in
  let search = 4 in
  let peak = ref (clamp t centre) in
  for k = clamp t (centre - search) to clamp t (centre + search) do
    if t.power.(k) > t.power.(!peak) then peak := k
  done;
  let lobe = Window.main_lobe_bins t.window in
  (clamp t (!peak - lobe), clamp t (!peak + lobe))

let tone_power t ~freq =
  let lo, hi = tone_bins t ~freq in
  let acc = ref 0.0 in
  for k = lo to hi do
    acc := !acc +. t.power.(k)
  done;
  !acc

let psd_db t = Array.map Decibel.db_of_power_ratio t.power
