lib/sigkit/window.mli:
