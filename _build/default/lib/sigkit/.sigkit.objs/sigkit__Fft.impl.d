lib/sigkit/fft.ml: Array Float
