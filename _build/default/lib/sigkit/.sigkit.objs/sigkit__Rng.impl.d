lib/sigkit/rng.ml: Char Float Int64 String
