lib/sigkit/decibel.mli:
