lib/sigkit/rng.mli:
