lib/sigkit/decibel.ml:
