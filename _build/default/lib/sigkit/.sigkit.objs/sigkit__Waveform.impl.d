lib/sigkit/waveform.ml: Array Decibel Float Rng
