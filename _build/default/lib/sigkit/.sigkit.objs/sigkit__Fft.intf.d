lib/sigkit/fft.mli:
