lib/sigkit/spectrum.mli: Window
