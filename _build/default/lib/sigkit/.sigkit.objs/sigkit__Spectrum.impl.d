lib/sigkit/spectrum.ml: Array Decibel Fft Float List Window
