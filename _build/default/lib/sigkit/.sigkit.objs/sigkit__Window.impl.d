lib/sigkit/window.ml: Array Float List
