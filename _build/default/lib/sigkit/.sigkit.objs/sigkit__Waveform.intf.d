lib/sigkit/waveform.mli: Rng
