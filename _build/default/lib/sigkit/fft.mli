(** Radix-2 complex fast Fourier transform.

    Operates in place on parallel real/imaginary [float array]s, which
    avoids boxing [Complex.t] in hot loops.  Lengths must be powers of
    two; {!is_pow2} and {!next_pow2} help callers prepare records. *)

val is_pow2 : int -> bool
val next_pow2 : int -> int

val forward : float array -> float array -> unit
(** [forward re im] transforms in place (decimation in time, no
    normalisation).  Raises [Invalid_argument] on length mismatch or
    non-power-of-two length. *)

val inverse : float array -> float array -> unit
(** Inverse transform in place, normalised by 1/N so that
    [inverse (forward x) = x]. *)

val of_real : float array -> float array * float array
(** Copy a real record into freshly allocated (re, im) arrays. *)

val magnitude_squared : float array -> float array -> float array
(** Pointwise |X_k|^2 of a transformed record. *)
