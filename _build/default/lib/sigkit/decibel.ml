let reference_ohms = 50.0

let db_of_power_ratio r = if r <= 0.0 then neg_infinity else 10.0 *. log10 r
let power_ratio_of_db db = 10.0 ** (db /. 10.0)
let db_of_amplitude_ratio r = if r <= 0.0 then neg_infinity else 20.0 *. log10 r
let dbm_of_watts w = db_of_power_ratio (w *. 1000.0)
let watts_of_dbm dbm = power_ratio_of_db dbm /. 1000.0

(* P = A^2 / (2 R) for a peak-amplitude-A sinusoid into load R. *)
let amplitude_of_dbm dbm = sqrt (2.0 *. reference_ohms *. watts_of_dbm dbm)
let dbm_of_amplitude a = dbm_of_watts (a *. a /. (2.0 *. reference_ohms))
