(** Test-signal generation and time-domain utilities. *)

val tone : amplitude:float -> freq:float -> fs:float -> ?phase:float -> int -> float array
(** [tone ~amplitude ~freq ~fs n] is [n] samples of a sinusoid. *)

val tone_dbm : p_dbm:float -> freq:float -> fs:float -> ?phase:float -> int -> float array
(** Sinusoid whose power into the 50-ohm reference load is [p_dbm]. *)

val two_tone_dbm : p_dbm:float -> f1:float -> f2:float -> fs:float -> int -> float array
(** Two equal-power tones, each at [p_dbm] (the classic IM3/SFDR
    stimulus). *)

val add : float array -> float array -> float array
val scale : float -> float array -> float array

val gaussian_noise : Rng.t -> sigma:float -> int -> float array

val rms : float array -> float
val peak : float array -> float

val mean : float array -> float

val coherent_frequency : freq:float -> fs:float -> n:int -> float
(** Nearest frequency to [freq] that lands exactly on a bin of an
    [n]-point FFT at rate [fs] (and is odd-indexed when possible, the
    standard coherent-sampling choice that avoids harmonic aliasing onto
    the carrier bin). *)
