(** Power spectra and band-power integration.

    A spectrum here is the one-sided windowed periodogram of a real
    record: [n/2 + 1] bins of power (arbitrary units consistent across
    bins), bin [k] centred at frequency [k * fs / n].  All SNR/SFDR
    metrology reduces to integrating these bins over frequency bands. *)

type t = {
  power : float array;  (** one-sided bin powers, length n/2 + 1 *)
  fs : float;           (** sample rate the record was taken at *)
  n : int;              (** record length (power of two) *)
  window : Window.kind;
}

val periodogram : ?window:Window.kind -> fs:float -> float array -> t
(** [periodogram ~fs x] estimates the spectrum of [x].  The record is
    truncated to the largest power-of-two prefix.  Default window is
    Hann. *)

val bin_of_freq : t -> float -> int
(** Nearest bin index for a frequency in hertz (clamped to range). *)

val freq_of_bin : t -> int -> float

val band_power : t -> f_lo:float -> f_hi:float -> float
(** Total power in the inclusive bin range covering [f_lo, f_hi]. *)

val band_power_excluding : t -> f_lo:float -> f_hi:float -> exclude:(int * int) list -> float
(** Same, with the given inclusive bin ranges removed (e.g. carrier
    bins when integrating noise). *)

val peak_in_band : t -> f_lo:float -> f_hi:float -> int * float
(** Bin index and power of the strongest bin in the band. *)

val tone_power : t -> freq:float -> float
(** Power of a coherent tone near [freq]: the peak bin in a small search
    neighbourhood plus its main-lobe skirt. *)

val tone_bins : t -> freq:float -> int * int
(** Inclusive bin range attributed to a tone at [freq] (peak bin +-
    window main lobe), for exclusion from noise integrals. *)

val psd_db : t -> float array
(** Bin powers in dB (10 log10), for plotting PSD shapes. *)
