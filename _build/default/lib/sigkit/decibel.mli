(** Decibel and dBm conversions used throughout the RF metrology.

    Power quantities are in watts unless suffixed; amplitudes are peak
    volts into the reference load (50 ohm, the standard RF impedance). *)

val reference_ohms : float
(** Reference load for dBm/amplitude conversions (50 ohm). *)

val db_of_power_ratio : float -> float
(** [db_of_power_ratio r] is [10 log10 r].  Returns [neg_infinity] for
    non-positive ratios. *)

val power_ratio_of_db : float -> float
(** Inverse of {!db_of_power_ratio}. *)

val db_of_amplitude_ratio : float -> float
(** [20 log10 r] for voltage/amplitude ratios. *)

val dbm_of_watts : float -> float
(** Power in dBm given watts. *)

val watts_of_dbm : float -> float
(** Watts given power in dBm. *)

val amplitude_of_dbm : float -> float
(** Peak sinusoid amplitude (volts) delivering the given power into
    {!reference_ohms}. *)

val dbm_of_amplitude : float -> float
(** Inverse of {!amplitude_of_dbm}. *)
