(* Quickstart: lock, provision and unlock one chip.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. A die comes back from the (untrusted) foundry.  Its process
     variations — and therefore its correct configuration — are unique. *)
  let standard = Rfchain.Standards.max_frequency in
  let chip = Circuit.Process.fabricate ~seed:2024 () in
  let receiver = Rfchain.Receiver.create chip standard in

  (* 2. Out of the box the chip is locked: without the configuration
     word it does not meet any specification. *)
  let bench = Metrics.Measure.create receiver in
  let locked_snr = Metrics.Measure.snr_mod_db bench Rfchain.Config.nominal in
  Printf.printf "fresh die, nominal word : SNR = %6.1f dB  (spec: %.0f dB) -> locked\n"
    locked_snr standard.Rfchain.Standards.min_snr_db;

  (* 3. The design house runs the secret 14-step calibration in its
     secure environment.  The returned configuration setting IS the
     secret key. *)
  let report = (Calibration.Calibrate.run receiver).Calibration.Calibrate.report in
  let key = Core.Key.make ~standard ~chip report.Calibration.Calibrate.key in
  Printf.printf "after calibration       : SNR = %6.1f dB, SFDR = %.1f dB -> unlocked\n"
    report.Calibration.Calibrate.snr_mod_db report.Calibration.Calibrate.sfdr_db;

  (* 4. Provision the key through the PUF scheme (Fig. 3b): the chip
     stores nothing; the customer holds a user key that only works on
     this die. *)
  let scheme, user_keys = Core.Key_mgmt.provision_puf chip [ key ] in

  (* 5. Every power-on, the chip recovers its programming bits from
     PUF response XOR user key. *)
  (match Core.Key_mgmt.power_on scheme ~user_keys ~standard:standard.Rfchain.Standards.name () with
  | Ok config ->
    let snr = Metrics.Measure.snr_mod_db bench config in
    Printf.printf "power-on with user key  : SNR = %6.1f dB -> functional\n" snr
  | Error e -> Printf.printf "power-on failed: %s\n" e);

  (* 6. Without the user key (stolen, recycled or overproduced part)
     the chip stays inert. *)
  match Core.Key_mgmt.power_on scheme ~standard:standard.Rfchain.Standards.name () with
  | Ok _ -> print_endline "power-on without key    : unexpectedly unlocked (bug!)"
  | Error e -> Printf.printf "power-on without key    : %s -> stays locked\n" e
